package topology

import (
	"testing"
	"testing/quick"
)

// Property: for random torus dimensions and random node pairs, the route
// length always equals the analytic hop count, the hop count is symmetric,
// and the triangle inequality holds.
func TestTorusRouteHopConsistencyProperty(t *testing.T) {
	f := func(xr, yr, zr, ar, br, cr uint8) bool {
		x := 1 + int(xr)%6
		y := 1 + int(yr)%6
		z := 1 + int(zr)%6
		tor, err := NewTorus(x, y, z)
		if err != nil {
			return false
		}
		n := tor.Nodes()
		a := int(ar) % n
		b := int(br) % n
		c := int(cr) % n
		path, err := tor.Route(a, b, nil)
		if err != nil {
			return false
		}
		if len(path) != tor.HopCount(a, b) {
			return false
		}
		if tor.HopCount(a, b) != tor.HopCount(b, a) {
			return false
		}
		// Triangle inequality.
		return tor.HopCount(a, b) <= tor.HopCount(a, c)+tor.HopCount(c, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: for random mesh dimensions, mesh hop counts dominate the
// torus's for the same pair (removing wrap links can only lengthen paths).
func TestMeshDominatesTorusProperty(t *testing.T) {
	f := func(xr, yr, zr, ar, br uint8) bool {
		x := 1 + int(xr)%5
		y := 1 + int(yr)%5
		z := 1 + int(zr)%5
		mesh, err := NewMesh(x, y, z)
		if err != nil {
			return false
		}
		tor, err := NewTorus(x, y, z)
		if err != nil {
			return false
		}
		n := mesh.Nodes()
		a := int(ar) % n
		b := int(br) % n
		return mesh.HopCount(a, b) >= tor.HopCount(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: random balanced dragonflies have exactly one global link per
// group pair and all hop counts within [2,5] (0 for self).
func TestDragonflyStructureProperty(t *testing.T) {
	f := func(hr, ar, br uint8) bool {
		h := 1 + int(hr)%4
		a := 2 * h
		p := h
		d, err := NewDragonfly(a, h, p)
		if err != nil {
			return false
		}
		// Group-pair coverage.
		g := d.Groups()
		pairs := map[[2]int]int{}
		classes := d.LinkClasses()
		for i, l := range d.Links() {
			if classes[i] != ClassGlobal {
				continue
			}
			g1 := (l.A - d.Nodes()) / a
			g2 := (l.B - d.Nodes()) / a
			pairs[pairKey(g1, g2)]++
		}
		if len(pairs) != g*(g-1)/2 {
			return false
		}
		for _, c := range pairs {
			if c != 1 {
				return false
			}
		}
		n := d.Nodes()
		s := int(ar) % n
		e := int(br) % n
		hc := d.HopCount(s, e)
		if s == e {
			return hc == 0
		}
		return hc >= 2 && hc <= 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: fat-tree hop counts are always even (up-down routing) and
// bounded by twice the stage count.
func TestFatTreeHopParityProperty(t *testing.T) {
	f := func(radixRaw, stagesRaw, ar, br uint8) bool {
		radix := 4 + 2*(int(radixRaw)%6) // 4..14 even
		stages := 1 + int(stagesRaw)%3
		ft, err := NewFatTree(radix, stages)
		if err != nil {
			return false
		}
		n := ft.Nodes()
		a := int(ar) % n
		b := int(br) % n
		hc := ft.HopCount(a, b)
		if a == b {
			return hc == 0
		}
		return hc%2 == 0 && hc >= 2 && hc <= 2*stages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every topology's Diameter bounds all pairwise hop counts and
// is attained by some pair.
func TestDiameterProperty(t *testing.T) {
	builds := []func() (Topology, error){
		func() (Topology, error) { return NewTorus(4, 3, 2) },
		func() (Topology, error) { return NewMesh(3, 3, 2) },
		func() (Topology, error) { return NewFatTree(8, 2) },
		func() (Topology, error) { return NewDragonfly(4, 2, 2) },
	}
	for _, build := range builds {
		topo, err := build()
		if err != nil {
			t.Fatal(err)
		}
		diam := Diameter(topo)
		attained := false
		for s := 0; s < topo.Nodes(); s++ {
			for d := 0; d < topo.Nodes(); d++ {
				h := topo.HopCount(s, d)
				if h > diam {
					t.Fatalf("%s: hop count %d exceeds diameter %d", topo.Name(), h, diam)
				}
				if h == diam {
					attained = true
				}
			}
		}
		if !attained {
			t.Fatalf("%s: diameter %d never attained", topo.Name(), diam)
		}
	}
}
