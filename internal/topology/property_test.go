package topology

import (
	"testing"
	"testing/quick"
)

// Property: for random torus dimensions and random node pairs, the route
// length always equals the analytic hop count, the hop count is symmetric,
// and the triangle inequality holds.
func TestTorusRouteHopConsistencyProperty(t *testing.T) {
	f := func(xr, yr, zr, ar, br, cr uint8) bool {
		x := 1 + int(xr)%6
		y := 1 + int(yr)%6
		z := 1 + int(zr)%6
		tor, err := NewTorus(x, y, z)
		if err != nil {
			return false
		}
		n := tor.Nodes()
		a := int(ar) % n
		b := int(br) % n
		c := int(cr) % n
		path, err := tor.Route(a, b, nil)
		if err != nil {
			return false
		}
		if len(path) != tor.HopCount(a, b) {
			return false
		}
		if tor.HopCount(a, b) != tor.HopCount(b, a) {
			return false
		}
		// Triangle inequality.
		return tor.HopCount(a, b) <= tor.HopCount(a, c)+tor.HopCount(c, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: for random mesh dimensions, mesh hop counts dominate the
// torus's for the same pair (removing wrap links can only lengthen paths).
func TestMeshDominatesTorusProperty(t *testing.T) {
	f := func(xr, yr, zr, ar, br uint8) bool {
		x := 1 + int(xr)%5
		y := 1 + int(yr)%5
		z := 1 + int(zr)%5
		mesh, err := NewMesh(x, y, z)
		if err != nil {
			return false
		}
		tor, err := NewTorus(x, y, z)
		if err != nil {
			return false
		}
		n := mesh.Nodes()
		a := int(ar) % n
		b := int(br) % n
		return mesh.HopCount(a, b) >= tor.HopCount(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: random balanced dragonflies have exactly one global link per
// group pair and all hop counts within [2,5] (0 for self).
func TestDragonflyStructureProperty(t *testing.T) {
	f := func(hr, ar, br uint8) bool {
		h := 1 + int(hr)%4
		a := 2 * h
		p := h
		d, err := NewDragonfly(a, h, p)
		if err != nil {
			return false
		}
		// Group-pair coverage.
		g := d.Groups()
		pairs := map[[2]int]int{}
		classes := d.LinkClasses()
		for i, l := range d.Links() {
			if classes[i] != ClassGlobal {
				continue
			}
			g1 := (l.A - d.Nodes()) / a
			g2 := (l.B - d.Nodes()) / a
			pairs[pairKey(g1, g2)]++
		}
		if len(pairs) != g*(g-1)/2 {
			return false
		}
		for _, c := range pairs {
			if c != 1 {
				return false
			}
		}
		n := d.Nodes()
		s := int(ar) % n
		e := int(br) % n
		hc := d.HopCount(s, e)
		if s == e {
			return hc == 0
		}
		return hc >= 2 && hc <= 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: fat-tree hop counts are always even (up-down routing) and
// bounded by twice the stage count.
func TestFatTreeHopParityProperty(t *testing.T) {
	f := func(radixRaw, stagesRaw, ar, br uint8) bool {
		radix := 4 + 2*(int(radixRaw)%6) // 4..14 even
		stages := 1 + int(stagesRaw)%3
		ft, err := NewFatTree(radix, stages)
		if err != nil {
			return false
		}
		n := ft.Nodes()
		a := int(ar) % n
		b := int(br) % n
		hc := ft.HopCount(a, b)
		if a == b {
			return hc == 0
		}
		return hc%2 == 0 && hc >= 2 && hc <= 2*stages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// familyCases instantiates one representative of every topology family,
// paired with its declared switch radix (the maximum ports any vertex may
// use). Future families added here are covered by the invariant suite
// below by construction.
func familyCases(t *testing.T) []struct {
	topo  Topology
	radix int
} {
	t.Helper()
	tor, err := NewTorus(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := NewMesh(3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := NewFatTree(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	df, err := NewDragonfly(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := NewSlimFly(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	jf, err := NewJellyfish(12, 4, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	hx, err := NewHyperX(3, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		topo  Topology
		radix int
	}{
		{tor, 6},                    // ≤ 6 neighbor links, integrated router
		{mesh, 6},                   //
		{ft, 8},                     // the constructed switch radix
		{df, (4 - 1) + 2 + 2},       // (a-1) local + h global + p terminals
		{sf, sf.NetworkRadix() + 2}, // k inter-router + p terminals
		{jf, 4 + 2},                 // r inter-switch + p terminals
		{hx, hx.NetworkRadix() + 2}, // per-dim all-to-all + t terminals
	}
}

// Invariant suite over every family: Route length == HopCount == BFS
// distance with Route a contiguous walk, hop counts symmetric and obeying
// the triangle inequality, vertex degrees within the declared radix, and
// LinkClasses() partitioning exactly Links().
func TestAllFamiliesRoutingInvariants(t *testing.T) {
	for _, tc := range familyCases(t) {
		topo := tc.topo
		t.Run(topo.Name(), func(t *testing.T) {
			g, err := GraphOf(topo)
			if err != nil {
				t.Fatal(err)
			}
			n := topo.Nodes()

			// Link classes partition the link list.
			classes := topo.LinkClasses()
			if len(classes) != len(topo.Links()) {
				t.Fatalf("%d classes for %d links", len(classes), len(topo.Links()))
			}
			counts := map[LinkClass]int{}
			for _, c := range classes {
				counts[c]++
			}
			total := 0
			for _, c := range counts {
				total += c
			}
			if total != len(topo.Links()) {
				t.Fatalf("class counts sum to %d, want %d", total, len(topo.Links()))
			}

			// Degrees within the declared radix.
			for v := 0; v < topo.NumVertices(); v++ {
				deg, err := g.Degree(v)
				if err != nil {
					t.Fatal(err)
				}
				if deg > tc.radix {
					t.Fatalf("vertex %d degree %d exceeds declared radix %d", v, deg, tc.radix)
				}
			}

			// All-pairs: Route/HopCount/BFS parity and walk validity.
			hop := make([][]int, n)
			links := topo.Links()
			var buf []int
			for s := 0; s < n; s++ {
				dist, err := g.BFSFrom(s)
				if err != nil {
					t.Fatal(err)
				}
				hop[s] = make([]int, n)
				for d := 0; d < n; d++ {
					h := topo.HopCount(s, d)
					hop[s][d] = h
					if h != dist[d] {
						t.Fatalf("HopCount(%d,%d)=%d, BFS=%d", s, d, h, dist[d])
					}
					buf, err = topo.Route(s, d, buf)
					if err != nil {
						t.Fatal(err)
					}
					if len(buf) != h {
						t.Fatalf("Route(%d,%d) length %d, HopCount %d", s, d, len(buf), h)
					}
					cur := s
					for _, li := range buf {
						l := links[li]
						switch cur {
						case l.A:
							cur = l.B
						case l.B:
							cur = l.A
						default:
							t.Fatalf("Route(%d,%d): link %d (%d-%d) does not touch %d", s, d, li, l.A, l.B, cur)
						}
					}
					if cur != d {
						t.Fatalf("Route(%d,%d) ends at %d", s, d, cur)
					}
				}
			}

			// Symmetry and the triangle inequality (strided third point to
			// bound the cubic loop).
			step := 1 + n/24
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if hop[a][b] != hop[b][a] {
						t.Fatalf("HopCount(%d,%d)=%d but HopCount(%d,%d)=%d", a, b, hop[a][b], b, a, hop[b][a])
					}
					for c := 0; c < n; c += step {
						if hop[a][b] > hop[a][c]+hop[c][b] {
							t.Fatalf("triangle violated: d(%d,%d)=%d > d(%d,%d)+d(%d,%d)=%d",
								a, b, hop[a][b], a, c, c, b, hop[a][c]+hop[c][b])
						}
					}
				}
			}
		})
	}
}

// Property: every topology's Diameter bounds all pairwise hop counts and
// is attained by some pair.
func TestDiameterProperty(t *testing.T) {
	builds := []func() (Topology, error){
		func() (Topology, error) { return NewTorus(4, 3, 2) },
		func() (Topology, error) { return NewMesh(3, 3, 2) },
		func() (Topology, error) { return NewFatTree(8, 2) },
		func() (Topology, error) { return NewDragonfly(4, 2, 2) },
		func() (Topology, error) { return NewSlimFly(5, 2) },
		func() (Topology, error) { return NewJellyfish(12, 4, 2, 7) },
		func() (Topology, error) { return NewHyperX(3, 3, 2, 2) },
	}
	for _, build := range builds {
		topo, err := build()
		if err != nil {
			t.Fatal(err)
		}
		diam := Diameter(topo)
		attained := false
		for s := 0; s < topo.Nodes(); s++ {
			for d := 0; d < topo.Nodes(); d++ {
				h := topo.HopCount(s, d)
				if h > diam {
					t.Fatalf("%s: hop count %d exceeds diameter %d", topo.Name(), h, diam)
				}
				if h == diam {
					attained = true
				}
			}
		}
		if !attained {
			t.Fatalf("%s: diameter %d never attained", topo.Name(), diam)
		}
	}
}
