package topology

import (
	"math/rand"
	"testing"
)

func TestNewTorusValidation(t *testing.T) {
	for _, dims := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-2, 2, 2}} {
		if _, err := NewTorus(dims[0], dims[1], dims[2]); err == nil {
			t.Errorf("NewTorus%v should fail", dims)
		}
	}
}

func TestTorusBasicProperties(t *testing.T) {
	tor, err := NewTorus(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tor.Nodes() != 24 || tor.NumVertices() != 24 {
		t.Fatalf("Nodes=%d NumVertices=%d", tor.Nodes(), tor.NumVertices())
	}
	if tor.Kind() != "torus" || tor.Name() != "torus(4,3,2)" {
		t.Fatalf("Kind=%q Name=%q", tor.Kind(), tor.Name())
	}
	x, y, z := tor.Dims()
	if x != 4 || y != 3 || z != 2 {
		t.Fatalf("Dims = %d,%d,%d", x, y, z)
	}
	// Link count: dims > 2 contribute nodes links, dim == 2 contributes
	// nodes/2. x=4: 24; y=3: 24; z=2: 12 -> 60.
	if got := len(tor.Links()); got != 60 {
		t.Fatalf("links = %d, want 60", got)
	}
	for _, c := range tor.LinkClasses() {
		if c != ClassLocal {
			t.Fatal("all torus links must be local")
		}
	}
}

func TestTorusLinkCountPerPaper(t *testing.T) {
	// The paper counts three links per node for the torus (one per
	// dimension); that holds exactly when all dimensions are > 2.
	tor, err := NewTorus(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tor.Links()), 3*64; got != want {
		t.Fatalf("links = %d, want %d", got, want)
	}
}

func TestTorusDegreeSix(t *testing.T) {
	tor, _ := NewTorus(3, 3, 3)
	g, err := GraphOf(tor)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < tor.NumVertices(); v++ {
		deg, err := g.Degree(v)
		if err != nil {
			t.Fatal(err)
		}
		if deg != 6 {
			t.Fatalf("vertex %d degree = %d, want 6", v, deg)
		}
	}
}

func TestTorusDimensionOfSizeOne(t *testing.T) {
	tor, err := NewTorus(5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A 5x1x1 torus is a 5-ring: 5 links.
	if got := len(tor.Links()); got != 5 {
		t.Fatalf("links = %d, want 5", got)
	}
	if tor.HopCount(0, 4) != 1 { // wrap-around
		t.Fatalf("HopCount(0,4) = %d, want 1", tor.HopCount(0, 4))
	}
	if tor.HopCount(0, 2) != 2 {
		t.Fatalf("HopCount(0,2) = %d, want 2", tor.HopCount(0, 2))
	}
}

func TestTorusHopCountKnownValues(t *testing.T) {
	tor, _ := NewTorus(4, 4, 4)
	cases := []struct {
		src, dst, want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 1},  // wrap in x
		{0, 2, 2},  // halfway around x ring
		{0, 4, 1},  // +y neighbor
		{0, 16, 1}, // +z neighbor
		{0, 21, 3}, // (1,1,1): 1+1+1
		{0, 42, 6}, // (2,2,2): 2+2+2 = diameter
	}
	for _, c := range cases {
		if got := tor.HopCount(c.src, c.dst); got != c.want {
			t.Errorf("HopCount(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestTorusHopCountSymmetric(t *testing.T) {
	tor, _ := NewTorus(5, 4, 3)
	for src := 0; src < tor.Nodes(); src++ {
		for dst := src + 1; dst < tor.Nodes(); dst++ {
			if tor.HopCount(src, dst) != tor.HopCount(dst, src) {
				t.Fatalf("asymmetric hop count %d<->%d", src, dst)
			}
		}
	}
}

func TestTorusConnected(t *testing.T) {
	for _, dims := range [][3]int{{2, 2, 2}, {3, 2, 2}, {5, 4, 3}, {1, 1, 1}, {7, 1, 2}} {
		tor, err := NewTorus(dims[0], dims[1], dims[2])
		if err != nil {
			t.Fatal(err)
		}
		g, err := GraphOf(tor)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := g.Connected()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("torus%v not connected", dims)
		}
	}
}

func TestTorusRouteOutOfRange(t *testing.T) {
	tor, _ := NewTorus(2, 2, 2)
	if _, err := tor.Route(-1, 0, nil); err == nil {
		t.Fatal("negative src accepted")
	}
	if _, err := tor.Route(0, 8, nil); err == nil {
		t.Fatal("dst out of range accepted")
	}
}

func TestTorusRouteSelfIsEmpty(t *testing.T) {
	tor, _ := NewTorus(3, 3, 3)
	path, err := tor.Route(13, 13, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 0 {
		t.Fatalf("self route has %d links", len(path))
	}
}

// validatePath checks that a link path is contiguous from src to dst.
func validatePath(t *testing.T, topo Topology, src, dst int, path []int) {
	t.Helper()
	links := topo.Links()
	cur := src
	for i, li := range path {
		if li < 0 || li >= len(links) {
			t.Fatalf("path[%d] = %d out of range", i, li)
		}
		l := links[li]
		switch cur {
		case l.A:
			cur = l.B
		case l.B:
			cur = l.A
		default:
			t.Fatalf("path[%d] link %d-%d does not touch current vertex %d", i, l.A, l.B, cur)
		}
	}
	if cur != dst {
		t.Fatalf("path ends at %d, want %d", cur, dst)
	}
}

// verifyRoutingAgainstBFS checks, for every (or a sampled subset of) node
// pair: HopCount equals the BFS shortest-path distance on the explicit
// graph, and Route produces a contiguous path of exactly that length.
func verifyRoutingAgainstBFS(t *testing.T, topo Topology, sample int) {
	t.Helper()
	g, err := GraphOf(topo)
	if err != nil {
		t.Fatal(err)
	}
	n := topo.Nodes()
	srcs := make([]int, 0, n)
	if sample <= 0 || sample >= n {
		for i := 0; i < n; i++ {
			srcs = append(srcs, i)
		}
	} else {
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < sample; i++ {
			srcs = append(srcs, rng.Intn(n))
		}
	}
	var buf []int
	for _, src := range srcs {
		dist, err := g.BFSFrom(src)
		if err != nil {
			t.Fatal(err)
		}
		for dst := 0; dst < n; dst++ {
			want := dist[dst]
			if got := topo.HopCount(src, dst); got != want {
				t.Fatalf("%s: HopCount(%d,%d) = %d, BFS = %d", topo.Name(), src, dst, got, want)
			}
			buf, err = topo.Route(src, dst, buf)
			if err != nil {
				t.Fatalf("%s: Route(%d,%d): %v", topo.Name(), src, dst, err)
			}
			if len(buf) != want {
				t.Fatalf("%s: Route(%d,%d) length %d, want %d", topo.Name(), src, dst, len(buf), want)
			}
			validatePath(t, topo, src, dst, buf)
		}
	}
}

func TestTorusRoutingMatchesBFS(t *testing.T) {
	for _, dims := range [][3]int{{2, 2, 2}, {3, 2, 2}, {3, 3, 3}, {4, 4, 4}, {5, 4, 3}, {6, 1, 2}} {
		tor, err := NewTorus(dims[0], dims[1], dims[2])
		if err != nil {
			t.Fatal(err)
		}
		verifyRoutingAgainstBFS(t, tor, 0)
	}
}

func TestTorusRoutingMatchesBFSLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tor, err := NewTorus(8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	verifyRoutingAgainstBFS(t, tor, 20)
}

func TestRingDist(t *testing.T) {
	cases := []struct{ a, b, size, want int }{
		{0, 0, 5, 0}, {0, 1, 5, 1}, {0, 4, 5, 1}, {0, 2, 5, 2}, {0, 3, 5, 2},
		{1, 3, 4, 2}, {0, 2, 4, 2}, {3, 0, 4, 1},
	}
	for _, c := range cases {
		if got := ringDist(c.a, c.b, c.size); got != c.want {
			t.Errorf("ringDist(%d,%d,%d) = %d, want %d", c.a, c.b, c.size, got, c.want)
		}
	}
}

// TestRouteWalkMatchesRingDist pins the per-dimension walk: on a 1D ring
// of every small size, the route between any two coordinates uses exactly
// ringDist links.
func TestRouteWalkMatchesRingDist(t *testing.T) {
	for size := 1; size <= 7; size++ {
		tor, err := NewTorus(size, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		var buf []int
		for a := 0; a < size; a++ {
			for b := 0; b < size; b++ {
				route, err := tor.Route(a, b, buf)
				if err != nil {
					t.Fatal(err)
				}
				buf = route
				if len(route) != ringDist(a, b, size) {
					t.Fatalf("route a=%d b=%d size=%d has %d links, want %d", a, b, size, len(route), ringDist(a, b, size))
				}
			}
		}
	}
}

// TestAccumulateFlowsMatchesPerPairRouting pins the tree-accumulation fast
// path against the definitionally-correct per-pair route walk, over random
// traffic on torus and mesh shapes including size-1 and size-2 dimensions.
func TestAccumulateFlowsMatchesPerPairRouting(t *testing.T) {
	shapes := []struct {
		x, y, z int
		wrap    bool
	}{
		{4, 4, 4, true}, {5, 3, 2, true}, {2, 2, 2, true}, {6, 1, 1, true},
		{4, 4, 4, false}, {5, 3, 2, false}, {1, 7, 2, false},
	}
	for _, s := range shapes {
		var tor *Torus
		var err error
		if s.wrap {
			tor, err = NewTorus(s.x, s.y, s.z)
		} else {
			tor, err = NewMesh(s.x, s.y, s.z)
		}
		if err != nil {
			t.Fatal(err)
		}
		n := tor.Nodes()
		rng := rand.New(rand.NewSource(int64(n)))
		dstBytes := make([]uint64, n)
		want := make([]uint64, len(tor.Links()))
		got := make([]uint64, len(tor.Links()))
		var sc FlowScratch
		var buf []int
		for src := 0; src < n; src++ {
			for i := range dstBytes {
				dstBytes[i] = 0
			}
			for v := 0; v < n; v++ {
				if v != src && rng.Intn(3) > 0 {
					dstBytes[v] = uint64(rng.Intn(1000))
				}
			}
			for v := 0; v < n; v++ {
				if dstBytes[v] == 0 {
					continue
				}
				buf, err = tor.Route(src, v, buf)
				if err != nil {
					t.Fatal(err)
				}
				for _, li := range buf {
					want[li] += dstBytes[v]
				}
			}
			if err := tor.AccumulateFlows(src, dstBytes, got, &sc); err != nil {
				t.Fatal(err)
			}
		}
		for li := range want {
			if want[li] != got[li] {
				t.Fatalf("%s: link %d bytes %d (fast) != %d (per-pair)", tor.Name(), li, got[li], want[li])
			}
		}
	}
}
