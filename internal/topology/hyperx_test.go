package topology

import "testing"

// Hop counts are exactly 2 + the number of differing lattice coordinates,
// so the diameter of an s1×s2×s3 HyperX (all dims > 1) is 5.
func TestHyperXHopStructure(t *testing.T) {
	h, err := NewHyperX(3, 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := h.Nodes(), 3*4*2*2; got != want {
		t.Fatalf("%d nodes, want %d", got, want)
	}
	if got := Diameter(h); got != 5 {
		t.Fatalf("diameter %d, want 5", got)
	}
	// A degenerate dimension drops out of the radix and the diameter.
	flat, err := NewHyperX(4, 5, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := flat.NetworkRadix(), 3+4; got != want {
		t.Fatalf("network radix %d, want %d", got, want)
	}
	if got := Diameter(flat); got != 4 {
		t.Fatalf("2D diameter %d, want 4", got)
	}
}

// Per-dimension all-to-all link counts: each line of length s contributes
// s(s-1)/2 links, all ClassLocal.
func TestHyperXLinkInventory(t *testing.T) {
	s1, s2, s3, tm := 3, 4, 2, 2
	h, err := NewHyperX(s1, s2, s3, tm)
	if err != nil {
		t.Fatal(err)
	}
	wantLocal := s2*s3*s1*(s1-1)/2 + s1*s3*s2*(s2-1)/2 + s1*s2*s3*(s3-1)/2
	var terminal, local, global int
	for _, c := range h.LinkClasses() {
		switch c {
		case ClassTerminal:
			terminal++
		case ClassLocal:
			local++
		case ClassGlobal:
			global++
		}
	}
	if terminal != h.Nodes() {
		t.Fatalf("%d terminal links, want %d", terminal, h.Nodes())
	}
	if local != wantLocal {
		t.Fatalf("%d local links, want %d", local, wantLocal)
	}
	if global != 0 {
		t.Fatalf("%d global links, want 0", global)
	}
}

func TestHyperXErrors(t *testing.T) {
	cases := []struct{ s1, s2, s3, t int }{
		{0, 2, 2, 1},   // zero dimension
		{2, 2, 2, 0},   // no terminals
		{-1, 1, 1, 1},  // negative
		{70, 70, 1, 1}, // beyond the switch cap
	}
	for _, c := range cases {
		if _, err := NewHyperX(c.s1, c.s2, c.s3, c.t); err == nil {
			t.Errorf("NewHyperX(%d,%d,%d,%d): expected error", c.s1, c.s2, c.s3, c.t)
		}
	}
}
