package simnet

import (
	"testing"

	"netloc/internal/trace"
	"netloc/internal/workloads"
)

// genTrace generates a synthetic workload trace for simulator tests.
func genTrace(t *testing.T, app string, ranks int) *trace.Trace {
	t.Helper()
	a, err := workloads.Lookup(app)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := a.Generate(ranks)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}
