package simnet

import (
	"testing"

	"netloc/internal/mapping"
	"netloc/internal/topology"
	"netloc/internal/workloads"
)

func BenchmarkSimulateLULESH64(b *testing.B) {
	a, err := workloads.Lookup("LULESH")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := a.Generate(64)
	if err != nil {
		b.Fatal(err)
	}
	topo, err := topology.NewTorus(4, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	mp, err := mapping.Consecutive(64, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(tr.Events)), "events")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, topo, mp, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateMiniFE144FatTree(b *testing.B) {
	a, err := workloads.Lookup("MiniFE")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := a.Generate(144)
	if err != nil {
		b.Fatal(err)
	}
	topo, err := topology.NewFatTree(48, 2)
	if err != nil {
		b.Fatal(err)
	}
	mp, err := mapping.Consecutive(144, topo.Nodes())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, topo, mp, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
