// Package simnet adds the temporal dimension the paper's static model
// deliberately omits and names as future work ("it seems very promising
// to address dynamic effects"): a flow-level network simulator that
// replays a trace's messages over a topology with finite link bandwidth,
// FIFO link arbitration, and cut-through pipelining.
//
// The model is intentionally light — one reservation per (message, link),
// no adaptive routing, no flow control credits — but it captures the two
// dynamic effects the static analysis cannot: queueing when messages
// contend for a link, and the resulting spread between ideal and observed
// latency. Comparing its measured utilization against the static model's
// upper-bound utilization quantifies how pessimistic or optimistic the
// static view is for a given workload.
package simnet

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"netloc/internal/comm"
	"netloc/internal/mapping"
	"netloc/internal/mpi"
	"netloc/internal/topology"
	"netloc/internal/trace"
)

// Options configures a simulation.
type Options struct {
	// BandwidthBytesPerSec is the per-link bandwidth (default 12 GB/s,
	// the paper's assumption).
	BandwidthBytesPerSec float64
	// PacketBytes sets the cut-through head latency per hop: the time to
	// serialize one packet (default 4096, the paper's packet size).
	PacketBytes int
	// MaxMessages aborts the simulation when the expanded message count
	// exceeds this bound (guards against simulating the all-to-all
	// giants by accident). Zero means 4 million.
	MaxMessages int
}

// Normalize fills in defaults (a zero value means "use the default")
// and validates the result. Explicitly non-positive or non-finite
// bandwidth, packet sizes, and message caps used to be accepted
// silently and produced nonsense simulations (negative latencies,
// divide-by-zero serialization times); now every problem is rejected in
// one listing-style error. internal/congest shares this validation for
// the option fields the two simulators have in common.
func (o Options) Normalize() (Options, error) {
	if o.BandwidthBytesPerSec == 0 {
		o.BandwidthBytesPerSec = 12e9
	}
	if o.PacketBytes == 0 {
		o.PacketBytes = comm.DefaultPacketSize
	}
	if o.MaxMessages == 0 {
		o.MaxMessages = 4 << 20
	}
	var probs []string
	// !(x > 0) also catches NaN, which compares false to everything.
	if !(o.BandwidthBytesPerSec > 0) || math.IsInf(o.BandwidthBytesPerSec, 1) {
		probs = append(probs, fmt.Sprintf("bandwidth %g B/s (need a positive, finite rate)", o.BandwidthBytesPerSec))
	}
	if o.PacketBytes < 0 {
		probs = append(probs, fmt.Sprintf("packet size %d B (need > 0)", o.PacketBytes))
	}
	if o.MaxMessages < 0 {
		probs = append(probs, fmt.Sprintf("message cap %d (need > 0)", o.MaxMessages))
	}
	if len(probs) > 0 {
		return o, fmt.Errorf("simnet: invalid options: %s", strings.Join(probs, "; "))
	}
	return o, nil
}

// Stats summarizes a simulation run.
type Stats struct {
	// Messages simulated (after collective expansion).
	Messages int
	// Latency of messages in seconds: release to last-byte arrival.
	MeanLatency   float64
	MedianLatency float64
	P99Latency    float64
	MaxLatency    float64
	// MeanIdealLatency is the mean zero-contention latency; the
	// difference to MeanLatency is pure queueing.
	MeanIdealLatency float64
	// MeanQueueDelay = MeanLatency - MeanIdealLatency.
	MeanQueueDelay float64
	// DelayedShare is the fraction of messages that waited at any link.
	DelayedShare float64
	// Makespan is the time from the first release to the last arrival.
	Makespan float64

	// Slackness (the paper's discussion: "how much leeway a message has
	// before the corresponding receive becomes blocking"): the gap
	// between a message's arrival and the receiving rank's next own
	// network activity, which is the model's proxy for when the data is
	// needed. Messages whose receiver never acts again are excluded.
	SlackSamples int
	MeanSlack    float64
	MedianSlack  float64
	// SlackCoverShare is the fraction of slack samples whose slack is at
	// least the message's own serialization time — those messages could
	// have been sent over a link at half bandwidth without delaying the
	// receiver, the paper's energy argument.
	SlackCoverShare float64
	// MeasuredUtilizationPct is the mean busy share of links that
	// carried traffic, measured over the makespan — the dynamic
	// counterpart of the paper's eq. 5.
	MeasuredUtilizationPct float64
	// MaxLinkBusyPct and MinLinkBusyPct are the busy shares of the
	// hottest and coolest links that carried any traffic — the
	// channel-occupancy extremes around MeasuredUtilizationPct's mean.
	MaxLinkBusyPct float64
	MinLinkBusyPct float64
	// UsedLinks is the number of links that carried traffic.
	UsedLinks int
	// HopsTraversed is the total number of link traversals across all
	// simulated messages (the dynamic counterpart of eq. 3's packet
	// hops, counted per message rather than per packet).
	HopsTraversed uint64
}

// message is one wire transfer with a release time.
type message struct {
	src, dst int
	bytes    uint64
	release  float64 // seconds
}

// Simulate replays the trace's wire messages over the topology.
func Simulate(t *trace.Trace, topo topology.Topology, mp *mapping.Mapping, opts Options) (*Stats, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	if mp.Ranks() < t.Meta.Ranks {
		return nil, fmt.Errorf("simnet: mapping covers %d ranks, trace has %d", mp.Ranks(), t.Meta.Ranks)
	}
	if mp.Nodes() > topo.Nodes() {
		return nil, fmt.Errorf("simnet: mapping node space %d exceeds topology %s", mp.Nodes(), topo.Name())
	}
	world, err := mpi.World(t.Meta.Ranks)
	if err != nil {
		return nil, err
	}

	msgs := make([]message, 0, len(t.Events))
	var buf []mpi.Message
	for i, e := range t.Events {
		buf, err = mpi.ExpandEvent(buf[:0], e, world, mpi.ExpandOptions{})
		if err != nil {
			return nil, fmt.Errorf("simnet: event %d: %w", i, err)
		}
		for _, m := range buf {
			if m.Bytes == 0 {
				continue
			}
			msgs = append(msgs, message{
				src: m.Src, dst: m.Dst, bytes: m.Bytes,
				release: float64(e.Start) / 1e9,
			})
			if len(msgs) > opts.MaxMessages {
				return nil, fmt.Errorf("simnet: message count exceeds limit %d", opts.MaxMessages)
			}
		}
	}
	if len(msgs) == 0 {
		return nil, fmt.Errorf("simnet: trace has no wire messages")
	}
	sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].release < msgs[j].release })

	bw := opts.BandwidthBytesPerSec
	hopLat := float64(opts.PacketBytes) / bw // head-packet serialization per hop
	linkFree := make([]float64, len(topo.Links()))
	linkBusy := make([]float64, len(topo.Links()))

	// Per-rank release timelines for the slackness analysis: the sorted
	// release times of each rank's own messages.
	releasesByRank := make([][]float64, t.Meta.Ranks)
	for _, m := range msgs {
		releasesByRank[m.src] = append(releasesByRank[m.src], m.release)
	}

	latencies := make([]float64, 0, len(msgs))
	var idealSum float64
	var delayed int
	// The makespan window opens at the first message that actually
	// enters the network: intra-node messages are skipped below, so
	// taking msgs[0].release would stretch the window — and skew
	// MeasuredUtilizationPct — whenever the earliest releases stay
	// on-node. msgs is sorted by release, so the first non-skipped
	// message has the earliest network release.
	var firstRelease float64
	haveFirst := false
	var lastArrival float64
	var slacks []float64
	var slackCovered int
	var hopsTraversed uint64

	var route []int
	for _, m := range msgs {
		ns, err := mp.NodeOf(m.src)
		if err != nil {
			return nil, err
		}
		nd, err := mp.NodeOf(m.dst)
		if err != nil {
			return nil, err
		}
		if ns == nd {
			continue // intra-node: no network involvement
		}
		if !haveFirst {
			firstRelease = m.release
			haveFirst = true
		}
		route, err = topo.Route(ns, nd, route)
		if err != nil {
			return nil, err
		}
		serial := float64(m.bytes) / bw
		ideal := float64(len(route)-1)*hopLat + serial
		hopsTraversed += uint64(len(route))

		headTime := m.release
		wasDelayed := false
		for i, li := range route {
			if i > 0 {
				headTime += hopLat
			}
			if linkFree[li] > headTime {
				headTime = linkFree[li]
				wasDelayed = true
			}
			linkFree[li] = headTime + serial
			linkBusy[li] += serial
		}
		arrival := headTime + serial
		lat := arrival - m.release
		latencies = append(latencies, lat)
		idealSum += ideal
		if wasDelayed {
			delayed++
		}
		if arrival > lastArrival {
			lastArrival = arrival
		}
		// Slack: time until the receiver's next own release after this
		// arrival.
		if next, ok := nextReleaseAfter(releasesByRank[m.dst], arrival); ok {
			slack := next - arrival
			slacks = append(slacks, slack)
			if slack >= serial {
				slackCovered++
			}
		}
	}
	if len(latencies) == 0 {
		return nil, fmt.Errorf("simnet: all messages were intra-node")
	}

	stats := &Stats{Messages: len(latencies), HopsTraversed: hopsTraversed}
	sort.Float64s(latencies)
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	stats.MeanLatency = sum / float64(len(latencies))
	stats.MedianLatency = latencies[len(latencies)/2]
	stats.P99Latency = latencies[int(math.Ceil(0.99*float64(len(latencies))))-1]
	stats.MaxLatency = latencies[len(latencies)-1]
	stats.MeanIdealLatency = idealSum / float64(len(latencies))
	stats.MeanQueueDelay = stats.MeanLatency - stats.MeanIdealLatency
	if stats.MeanQueueDelay < 0 {
		stats.MeanQueueDelay = 0 // float accumulation noise when nothing queued
	}
	stats.DelayedShare = float64(delayed) / float64(len(latencies))
	stats.Makespan = lastArrival - firstRelease

	if stats.Makespan > 0 {
		var busySum, busyMax, busyMin float64
		used := 0
		for _, b := range linkBusy {
			if b > 0 {
				busySum += b
				used++
				if b > busyMax {
					busyMax = b
				}
				if busyMin == 0 || b < busyMin {
					busyMin = b
				}
			}
		}
		stats.UsedLinks = used
		if used > 0 {
			stats.MeasuredUtilizationPct = clampPct(100 * busySum / (stats.Makespan * float64(used)))
			stats.MinLinkBusyPct = clampPct(100 * busyMin / stats.Makespan)
		}
		stats.MaxLinkBusyPct = clampPct(100 * busyMax / stats.Makespan)
	}
	if len(slacks) > 0 {
		stats.SlackSamples = len(slacks)
		sort.Float64s(slacks)
		var sum float64
		for _, s := range slacks {
			sum += s
		}
		stats.MeanSlack = sum / float64(len(slacks))
		stats.MedianSlack = slacks[len(slacks)/2]
		stats.SlackCoverShare = float64(slackCovered) / float64(len(slacks))
	}
	return stats, nil
}

// clampPct bounds a percentage to [0, 100]; per-link busy time never
// truly exceeds the makespan, but float accumulation can overshoot by
// ulps.
func clampPct(v float64) float64 {
	if v > 100 {
		return 100
	}
	if v < 0 {
		return 0
	}
	return v
}

// nextReleaseAfter returns the smallest release time strictly after t in
// the sorted timeline.
func nextReleaseAfter(timeline []float64, t float64) (float64, bool) {
	lo, hi := 0, len(timeline)
	for lo < hi {
		mid := (lo + hi) / 2
		if timeline[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(timeline) {
		return 0, false
	}
	return timeline[lo], true
}
