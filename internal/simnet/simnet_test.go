package simnet

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"netloc/internal/mapping"
	"netloc/internal/topology"
	"netloc/internal/trace"
)

func torus222(t *testing.T) topology.Topology {
	t.Helper()
	topo, err := topology.NewTorus(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func consecutive(t *testing.T, ranks, nodes int) *mapping.Mapping {
	t.Helper()
	mp, err := mapping.Consecutive(ranks, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return mp
}

func TestSimulateSingleMessage(t *testing.T) {
	// One 12 kB message over one hop at 12 kB/s: serialization 1 s,
	// no pipelining hops, latency exactly 1 s.
	tr := &trace.Trace{
		Meta: trace.Meta{App: "s", Ranks: 8, WallTime: 10},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 12000, Start: 0, End: 1},
		},
	}
	stats, err := Simulate(tr, torus222(t), consecutive(t, 8, 8), Options{
		BandwidthBytesPerSec: 12000,
		PacketBytes:          4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 1 {
		t.Fatalf("messages = %d", stats.Messages)
	}
	if math.Abs(stats.MeanLatency-1.0) > 1e-9 {
		t.Fatalf("latency = %v, want 1.0", stats.MeanLatency)
	}
	if stats.MeanQueueDelay != 0 || stats.DelayedShare != 0 {
		t.Fatalf("unexpected queueing: %+v", stats)
	}
	if math.Abs(stats.Makespan-1.0) > 1e-9 {
		t.Fatalf("makespan = %v", stats.Makespan)
	}
	// Single used link busy for the whole makespan: 100%.
	if math.Abs(stats.MeasuredUtilizationPct-100) > 1e-9 {
		t.Fatalf("utilization = %v", stats.MeasuredUtilizationPct)
	}
}

func TestSimulateMultiHopPipelining(t *testing.T) {
	// 0 -> 7 is 3 hops on the 2x2x2 torus. Cut-through: latency =
	// 2 * hopLat + serialization.
	const bw = 4096.0 // packet time = 1 s
	tr := &trace.Trace{
		Meta: trace.Meta{App: "s", Ranks: 8, WallTime: 100},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 7, Root: -1, Bytes: 8192, Start: 0, End: 1},
		},
	}
	stats, err := Simulate(tr, torus222(t), consecutive(t, 8, 8), Options{
		BandwidthBytesPerSec: bw,
		PacketBytes:          4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 2*1.0 + 2.0 // two extra hops + 2 s serialization
	if math.Abs(stats.MeanLatency-want) > 1e-9 {
		t.Fatalf("latency = %v, want %v", stats.MeanLatency, want)
	}
	if math.Abs(stats.MeanIdealLatency-want) > 1e-9 {
		t.Fatalf("ideal = %v, want %v", stats.MeanIdealLatency, want)
	}
}

func TestSimulateContentionQueues(t *testing.T) {
	// Two messages released together over the same link: the second
	// waits for the first.
	tr := &trace.Trace{
		Meta: trace.Meta{App: "s", Ranks: 8, WallTime: 100},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 12000, Start: 0, End: 1},
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 12000, Start: 0, End: 1},
		},
	}
	stats, err := Simulate(tr, torus222(t), consecutive(t, 8, 8), Options{
		BandwidthBytesPerSec: 12000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 2 {
		t.Fatalf("messages = %d", stats.Messages)
	}
	// First: 1 s. Second: waits 1 s then 1 s -> 2 s. Mean 1.5 s.
	if math.Abs(stats.MeanLatency-1.5) > 1e-9 {
		t.Fatalf("mean latency = %v, want 1.5", stats.MeanLatency)
	}
	if math.Abs(stats.MeanQueueDelay-0.5) > 1e-9 {
		t.Fatalf("queue delay = %v, want 0.5", stats.MeanQueueDelay)
	}
	if math.Abs(stats.DelayedShare-0.5) > 1e-9 {
		t.Fatalf("delayed share = %v, want 0.5", stats.DelayedShare)
	}
	if math.Abs(stats.MaxLatency-2.0) > 1e-9 {
		t.Fatalf("max latency = %v, want 2", stats.MaxLatency)
	}
}

func TestSimulateDisjointPathsDontQueue(t *testing.T) {
	tr := &trace.Trace{
		Meta: trace.Meta{App: "s", Ranks: 8, WallTime: 100},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 12000, Start: 0, End: 1},
			{Rank: 2, Op: trace.OpSend, Peer: 3, Root: -1, Bytes: 12000, Start: 0, End: 1},
		},
	}
	stats, err := Simulate(tr, torus222(t), consecutive(t, 8, 8), Options{
		BandwidthBytesPerSec: 12000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DelayedShare != 0 || stats.MeanQueueDelay != 0 {
		t.Fatalf("disjoint paths queued: %+v", stats)
	}
}

func TestSimulateCollectiveExpansion(t *testing.T) {
	// A bcast from rank 0 on 4 ranks expands to 3 messages.
	tr := &trace.Trace{
		Meta: trace.Meta{App: "s", Ranks: 4, WallTime: 100},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpBcast, Peer: -1, Root: 0, Bytes: 1000, Start: 0, End: 1},
			{Rank: 1, Op: trace.OpBcast, Peer: -1, Root: 0, Bytes: 1000, Start: 0, End: 1},
			{Rank: 2, Op: trace.OpBcast, Peer: -1, Root: 0, Bytes: 1000, Start: 0, End: 1},
			{Rank: 3, Op: trace.OpBcast, Peer: -1, Root: 0, Bytes: 1000, Start: 0, End: 1},
		},
	}
	topo, err := topology.NewTorus(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Simulate(tr, topo, consecutive(t, 4, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 3 {
		t.Fatalf("messages = %d, want 3", stats.Messages)
	}
}

func TestSimulateIntraNodeSkipped(t *testing.T) {
	tr := &trace.Trace{
		Meta: trace.Meta{App: "s", Ranks: 4, WallTime: 100},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 100, Start: 0, End: 1},
		},
	}
	topo, err := topology.NewTorus(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := mapping.Blocked(4, 2, 2) // ranks 0,1 share node 0
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(tr, topo, mp, Options{}); err == nil {
		t.Fatal("all-intra-node should error (nothing to simulate)")
	}
}

func TestSimulateMakespanIgnoresIntraNodeHead(t *testing.T) {
	// Regression: the makespan window used to open at msgs[0].release
	// even when that message stayed on-node and never touched the
	// network. Here an intra-node message at t=0 precedes the only wire
	// message (released at t=10, 12 kB over one hop at 12 kB/s = 1 s).
	// The window must be [10, 11] — makespan 1 s, one link busy the
	// whole window, 100% utilization — not the skewed [0, 11].
	tr := &trace.Trace{
		Meta: trace.Meta{App: "s", Ranks: 8, WallTime: 100},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 100, Start: 0, End: 1},
			{Rank: 0, Op: trace.OpSend, Peer: 2, Root: -1, Bytes: 12000, Start: 10_000_000_000, End: 11},
		},
	}
	mp, err := mapping.Blocked(8, 4, 2) // ranks 0,1 share node 0; rank 2 on node 1
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Simulate(tr, torus222(t), mp, Options{
		BandwidthBytesPerSec: 12000,
		PacketBytes:          4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 1 {
		t.Fatalf("messages = %d, want 1 (intra-node skipped)", stats.Messages)
	}
	if math.Abs(stats.Makespan-1.0) > 1e-9 {
		t.Fatalf("makespan = %v, want 1.0 (window must start at the first wire message)", stats.Makespan)
	}
	if math.Abs(stats.MeasuredUtilizationPct-100) > 1e-9 {
		t.Fatalf("utilization = %v%%, want 100%%", stats.MeasuredUtilizationPct)
	}
}

func TestSimulateValidation(t *testing.T) {
	tr := &trace.Trace{
		Meta: trace.Meta{App: "s", Ranks: 8, WallTime: 1},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 100},
		},
	}
	topo := torus222(t)
	small := consecutive(t, 4, 8)
	if _, err := Simulate(tr, topo, small, Options{}); err == nil {
		t.Fatal("undersized mapping accepted")
	}
	empty := &trace.Trace{Meta: trace.Meta{App: "s", Ranks: 8, WallTime: 1}}
	if _, err := Simulate(empty, topo, consecutive(t, 8, 8), Options{}); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := Simulate(tr, topo, consecutive(t, 8, 8), Options{MaxMessages: -1}); err == nil {
		t.Fatal("message limit not enforced")
	}
}

// Regression: withDefaults silently accepted non-positive bandwidth and
// packet sizes (a zero value means "use the default", but explicit
// negatives flowed straight into the latency math). Normalize must
// reject them with a listing-style error naming every bad field.
func TestOptionsNormalizeRejectsNonPositive(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want []string // substrings the error must mention
	}{
		{"negative bandwidth", Options{BandwidthBytesPerSec: -1}, []string{"bandwidth"}},
		{"NaN bandwidth", Options{BandwidthBytesPerSec: math.NaN()}, []string{"bandwidth"}},
		{"infinite bandwidth", Options{BandwidthBytesPerSec: math.Inf(1)}, []string{"bandwidth"}},
		{"negative packet size", Options{PacketBytes: -4096}, []string{"packet size"}},
		{"negative message cap", Options{MaxMessages: -1}, []string{"message cap"}},
		{
			"everything at once",
			Options{BandwidthBytesPerSec: -12e9, PacketBytes: -1, MaxMessages: -7},
			[]string{"bandwidth", "packet size", "message cap"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.opts.Normalize()
			if err == nil {
				t.Fatalf("Normalize(%+v) accepted invalid options", c.opts)
			}
			for _, w := range c.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q does not mention %q", err, w)
				}
			}
		})
	}
	// The zero value still means "use the defaults" — nothing may break
	// the Options{} callers all over the tree.
	o, err := Options{}.Normalize()
	if err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
	if o.BandwidthBytesPerSec != 12e9 || o.PacketBytes == 0 || o.MaxMessages == 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
	// Simulate rejects the same options end to end.
	tr := &trace.Trace{
		Meta: trace.Meta{App: "s", Ranks: 8, WallTime: 1},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 100},
		},
	}
	if _, err := Simulate(tr, torus222(t), consecutive(t, 8, 8), Options{BandwidthBytesPerSec: -5}); err == nil {
		t.Fatal("Simulate accepted negative bandwidth")
	}
}

func TestSimulateWorkloadEndToEnd(t *testing.T) {
	// Full pipeline on a real generated workload: latencies are finite,
	// utilization sane, and heavier contention on a slower network.
	tr := genTrace(t, "LULESH", 64)
	cfg, err := topology.TorusConfig(64)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	mp := consecutive(t, 64, topo.Nodes())

	fast, err := Simulate(tr, topo, mp, Options{}) // 12 GB/s
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Simulate(tr, topo, mp, Options{BandwidthBytesPerSec: 12e6})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Messages != slow.Messages {
		t.Fatal("message counts differ")
	}
	if !(fast.MeanLatency < slow.MeanLatency) {
		t.Fatalf("fast %v >= slow %v", fast.MeanLatency, slow.MeanLatency)
	}
	if fast.MeanLatency <= 0 || math.IsNaN(fast.MeanLatency) {
		t.Fatalf("bad latency %v", fast.MeanLatency)
	}
	if fast.P99Latency < fast.MedianLatency {
		t.Fatal("p99 below median")
	}
	if fast.MaxLatency < fast.P99Latency {
		t.Fatal("max below p99")
	}
	if fast.MeasuredUtilizationPct < 0 || fast.MeasuredUtilizationPct > 100 {
		t.Fatalf("utilization = %v", fast.MeasuredUtilizationPct)
	}
	if fast.MaxLinkBusyPct < fast.MeasuredUtilizationPct {
		t.Fatal("hottest link below mean busy share")
	}
}

func TestSimulateTopologyOrderingAtLowLoad(t *testing.T) {
	// At low load, simulated mean latency follows the hop ordering of
	// the static model: torus < fat tree < dragonfly for LULESH-64.
	tr := genTrace(t, "LULESH", 64)
	var lat []float64
	for _, build := range []func() (topology.Topology, error){
		func() (topology.Topology, error) { return topology.NewTorus(4, 4, 4) },
		func() (topology.Topology, error) { return topology.NewFatTree(48, 2) },
		func() (topology.Topology, error) { return topology.NewDragonfly(4, 2, 2) },
	} {
		topo, err := build()
		if err != nil {
			t.Fatal(err)
		}
		stats, err := Simulate(tr, topo, consecutive(t, 64, topo.Nodes()), Options{})
		if err != nil {
			t.Fatal(err)
		}
		lat = append(lat, stats.MeanIdealLatency)
	}
	if !(lat[0] < lat[1] && lat[1] < lat[2]) {
		t.Fatalf("ideal latency ordering violated: %v", lat)
	}
}

func TestSlackness(t *testing.T) {
	// Rank 0 sends to rank 1 at t=0 (12 kB at 12 kB/s: arrives t=1).
	// Rank 1's own next message departs at t=5: slack = 4 s, which
	// covers the 1 s serialization.
	tr := &trace.Trace{
		Meta: trace.Meta{App: "s", Ranks: 8, WallTime: 100},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 12000, Start: 0, End: 1},
			{Rank: 1, Op: trace.OpSend, Peer: 2, Root: -1, Bytes: 12000, Start: 5_000_000_000, End: 5_000_000_001},
		},
	}
	stats, err := Simulate(tr, torus222(t), consecutive(t, 8, 8), Options{
		BandwidthBytesPerSec: 12000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SlackSamples != 1 {
		t.Fatalf("slack samples = %d, want 1", stats.SlackSamples)
	}
	if math.Abs(stats.MeanSlack-4.0) > 1e-9 {
		t.Fatalf("mean slack = %v, want 4", stats.MeanSlack)
	}
	if stats.SlackCoverShare != 1 {
		t.Fatalf("cover share = %v, want 1", stats.SlackCoverShare)
	}
}

func TestSlacknessTightReceiver(t *testing.T) {
	// The receiver fires again only 0.1 s after arrival: slack below the
	// serialization time, so the link could not run slower.
	tr := &trace.Trace{
		Meta: trace.Meta{App: "s", Ranks: 8, WallTime: 100},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 12000, Start: 0, End: 1},
			{Rank: 1, Op: trace.OpSend, Peer: 2, Root: -1, Bytes: 12000, Start: 1_100_000_000, End: 1_100_000_001},
		},
	}
	stats, err := Simulate(tr, torus222(t), consecutive(t, 8, 8), Options{
		BandwidthBytesPerSec: 12000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SlackSamples != 1 {
		t.Fatalf("slack samples = %d", stats.SlackSamples)
	}
	if math.Abs(stats.MeanSlack-0.1) > 1e-9 {
		t.Fatalf("mean slack = %v, want 0.1", stats.MeanSlack)
	}
	if stats.SlackCoverShare != 0 {
		t.Fatalf("cover share = %v, want 0", stats.SlackCoverShare)
	}
}

func TestSlacknessNoFollowUpExcluded(t *testing.T) {
	// The receiving rank never sends again: no slack sample.
	tr := &trace.Trace{
		Meta: trace.Meta{App: "s", Ranks: 8, WallTime: 100},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 12000, Start: 0, End: 1},
		},
	}
	stats, err := Simulate(tr, torus222(t), consecutive(t, 8, 8), Options{
		BandwidthBytesPerSec: 12000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SlackSamples != 0 || stats.MeanSlack != 0 {
		t.Fatalf("unexpected slack: %+v", stats)
	}
}

func TestNextReleaseAfter(t *testing.T) {
	timeline := []float64{1, 2, 5, 9}
	if v, ok := nextReleaseAfter(timeline, 0); !ok || v != 1 {
		t.Fatalf("got %v, %v", v, ok)
	}
	if v, ok := nextReleaseAfter(timeline, 2); !ok || v != 5 {
		t.Fatalf("got %v, %v", v, ok)
	}
	if _, ok := nextReleaseAfter(timeline, 9); ok {
		t.Fatal("past-end lookup succeeded")
	}
	if _, ok := nextReleaseAfter(nil, 0); ok {
		t.Fatal("empty timeline lookup succeeded")
	}
}

// Property: over random small traces, simulated latency never beats the
// zero-contention ideal, the makespan covers the longest message, and all
// probabilities stay in [0,1].
func TestSimulateInvariantsProperty(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ranks := 4 + rng.Intn(12)
		tr := &trace.Trace{Meta: trace.Meta{App: "prop", Ranks: ranks, WallTime: 10}}
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			src := rng.Intn(ranks)
			dst := (src + 1 + rng.Intn(ranks-1)) % ranks
			tr.Events = append(tr.Events, trace.Event{
				Rank: src, Op: trace.OpSend, Peer: dst, Root: -1,
				Bytes: uint64(1 + rng.Intn(100000)),
				Start: uint64(rng.Intn(1_000_000_000)),
			})
		}
		cfg, err := topology.TorusConfig(ranks)
		if err != nil {
			t.Fatal(err)
		}
		topo, err := cfg.Build()
		if err != nil {
			t.Fatal(err)
		}
		mp := consecutive(t, ranks, topo.Nodes())
		stats, err := Simulate(tr, topo, mp, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if stats.MeanLatency+1e-12 < stats.MeanIdealLatency {
			t.Fatalf("seed %d: latency %v below ideal %v", seed, stats.MeanLatency, stats.MeanIdealLatency)
		}
		if stats.Makespan+1e-12 < stats.MaxLatency {
			t.Fatalf("seed %d: makespan %v below max latency %v", seed, stats.Makespan, stats.MaxLatency)
		}
		for _, p := range []float64{stats.DelayedShare, stats.SlackCoverShare} {
			if p < 0 || p > 1 {
				t.Fatalf("seed %d: probability %v out of range", seed, p)
			}
		}
		if stats.MeasuredUtilizationPct < 0 || stats.MeasuredUtilizationPct > 100 {
			t.Fatalf("seed %d: utilization %v", seed, stats.MeasuredUtilizationPct)
		}
	}
}

func TestSimulateOccupancyAndHops(t *testing.T) {
	// 0->1 is one hop on a 2x2x2 torus; 0->7 is three hops. Two network
	// messages traverse 4 links total, all four busy shares nonzero.
	tr := &trace.Trace{
		Meta: trace.Meta{App: "s", Ranks: 8, WallTime: 10},
		Events: []trace.Event{
			{Rank: 0, Op: trace.OpSend, Peer: 1, Root: -1, Bytes: 12000, Start: 0, End: 1},
			{Rank: 0, Op: trace.OpSend, Peer: 7, Root: -1, Bytes: 6000, Start: 0, End: 1},
		},
	}
	stats, err := Simulate(tr, torus222(t), consecutive(t, 8, 8), Options{
		BandwidthBytesPerSec: 12000,
		PacketBytes:          4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.HopsTraversed != 4 {
		t.Fatalf("HopsTraversed = %d, want 4", stats.HopsTraversed)
	}
	if stats.UsedLinks < 2 || stats.UsedLinks > 4 {
		t.Fatalf("UsedLinks = %d, want 2..4 (routes may share links)", stats.UsedLinks)
	}
	if stats.MinLinkBusyPct <= 0 || stats.MaxLinkBusyPct < stats.MinLinkBusyPct {
		t.Fatalf("busy extremes = (%v, %v)", stats.MinLinkBusyPct, stats.MaxLinkBusyPct)
	}
	if stats.MeasuredUtilizationPct < stats.MinLinkBusyPct-1e-9 ||
		stats.MeasuredUtilizationPct > stats.MaxLinkBusyPct+1e-9 {
		t.Fatalf("mean %v outside extremes (%v, %v)",
			stats.MeasuredUtilizationPct, stats.MinLinkBusyPct, stats.MaxLinkBusyPct)
	}
}
