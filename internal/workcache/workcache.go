// Package workcache provides the content-addressed workload artifact
// cache shared by the experiment drivers, the design sweep, and the
// analysis service.
//
// The paper's tables and figures sweep a (workload × scale × topology ×
// mapping) grid, but the expensive inputs — the generated synthetic trace,
// the accumulated communication matrices, and the built topologies —
// depend only on (app, ranks), (app, ranks, packet size, expansion
// strategy), and the topology's structural parameters respectively.
// Without a cache, every experiment re-derives them per cell; with one,
// the first run pays and every other experiment, design candidate, and
// service request above it shares the artifact.
//
// Cached values are shared read-only: traces and accumulated matrices are
// immutable after construction everywhere in the pipeline, and all
// derived analysis is exact integer or index-ordered arithmetic, so a
// cached artifact produces byte-identical reports to a fresh one. The
// scheduling-dependent Accumulated.Shards field is the one exception and
// is deliberately excluded from every report.
//
// Concurrency: lookups are mutex-guarded, misses are deduplicated with a
// singleflight group (a cold-start storm on one key runs one generation;
// the waiters share the result), and the store is a bounded LRU. A nil
// *Cache is valid and disables caching — every accessor just runs its
// generator.
package workcache

import (
	"container/list"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"netloc/internal/comm"
	"netloc/internal/mpi"
	"netloc/internal/topology"
	"netloc/internal/trace"
)

// DefaultMaxEntries bounds the artifact store when New is given a
// non-positive cap. Artifacts are per (app, ranks[, accumulate options])
// and the full experiment grid touches a few dozen, so 128 holds the
// entire paper sweep plus service traffic with room to spare.
const DefaultMaxEntries = 128

// TraceKey addresses a generated trace. Source names the generator kind
// ("gen" for the registry's configured scales, "genat" for extrapolated
// scales, "milc" for the design-only synthetic) so generators with
// different domains can never satisfy each other's lookups — a registry
// lookup must still fail at an unconfigured scale even when the design
// sweep cached an extrapolated trace there.
type TraceKey struct {
	Source string
	App    string
	Ranks  int
}

// SourceGenerate is the TraceKey source for registry App.Generate traces.
const SourceGenerate = "gen"

// SourceGenerateAt is the TraceKey source for extrapolated App.GenerateAt
// traces.
const SourceGenerateAt = "genat"

func (k TraceKey) id() string {
	return fmt.Sprintf("trace/%s/app=%s&ranks=%d", k.Source, strings.ToLower(k.App), k.Ranks)
}

// AccKey addresses an accumulated matrix pair. It extends the trace key
// with the two options that change matrix content; coverage, parallelism,
// budgets, and spans never do and must stay out.
type AccKey struct {
	Source     string
	App        string
	Ranks      int
	PacketSize int
	Strategy   mpi.Strategy
}

func (k AccKey) id() string {
	ps := k.PacketSize
	if ps <= 0 {
		ps = comm.DefaultPacketSize
	}
	return fmt.Sprintf("acc/%s/app=%s&ranks=%d&ps=%d&strategy=%d",
		k.Source, strings.ToLower(k.App), k.Ranks, ps, k.Strategy)
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
}

// Cache is the bounded artifact store. The zero value is not usable; use
// New. A nil *Cache disables caching.
type Cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	flight flightGroup

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key string
	val any
}

// New creates a cache bounded to max artifacts (DefaultMaxEntries when
// max <= 0).
func New(max int) *Cache {
	if max <= 0 {
		max = DefaultMaxEntries
	}
	return &Cache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element, max),
	}
}

// Trace returns the cached trace for k, running gen exactly once across
// concurrent callers on a miss. Errors are returned to every concurrent
// waiter but are not stored: a later call retries. A nil cache calls gen
// directly.
func (c *Cache) Trace(k TraceKey, gen func() (*trace.Trace, error)) (*trace.Trace, error) {
	v, err := c.do(k.id(), func() (any, error) { return gen() })
	if err != nil {
		return nil, err
	}
	return v.(*trace.Trace), nil
}

// Accumulated returns the cached matrix pair for k, running gen exactly
// once across concurrent callers on a miss. A nil cache calls gen
// directly.
func (c *Cache) Accumulated(k AccKey, gen func() (*comm.Accumulated, error)) (*comm.Accumulated, error) {
	v, err := c.do(k.id(), func() (any, error) { return gen() })
	if err != nil {
		return nil, err
	}
	return v.(*comm.Accumulated), nil
}

// topoID keys a built topology by its structural parameters only: Build
// ignores Config.Size and Config.Nodes, and String() renders exactly the
// fields Build reads for each kind.
func topoID(cfg topology.Config) string {
	return "topo/" + cfg.Kind + cfg.String()
}

// Topology returns the cached built topology for cfg, building it
// exactly once across concurrent callers on a miss. Built topologies
// are immutable (routing tables are precomputed at construction and
// every Route variant takes a caller-owned buffer), so one instance is
// safe to share across concurrent analysis cells. A nil cache builds
// directly.
func (c *Cache) Topology(cfg topology.Config, gen func() (topology.Topology, error)) (topology.Topology, error) {
	v, err := c.do(topoID(cfg), func() (any, error) { return gen() })
	if err != nil {
		return nil, err
	}
	return v.(topology.Topology), nil
}

// Stats returns the current effectiveness counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	entries := 0
	if c.ll != nil {
		entries = c.ll.Len()
	}
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
	}
}

func (c *Cache) do(id string, gen func() (any, error)) (any, error) {
	if c == nil {
		return gen()
	}
	if v, ok := c.get(id); ok {
		c.hits.Add(1)
		return v, nil
	}
	// The flight closure re-checks the store so that callers which queued
	// behind a winner arriving after its insert still hit; only the
	// winner runs gen. Waiters sharing the winner's result count as hits
	// of the dedup layer, not misses.
	v, err, shared := c.flight.do(id, func() (any, error) {
		if v, ok := c.get(id); ok {
			return v, nil
		}
		c.misses.Add(1)
		v, err := gen()
		if err != nil {
			return nil, err
		}
		c.add(id, v)
		return v, nil
	})
	if shared && err == nil {
		c.hits.Add(1)
	}
	return v, err
}

func (c *Cache) get(id string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[id]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *Cache) add(id string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[id]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = v
		return
	}
	c.items[id] = c.ll.PushFront(&cacheEntry{key: id, val: v})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// flightGroup is the in-tree singleflight (see internal/service for the
// byte-specialized original): one generation per key among concurrent
// callers, panic converted to a shared error, the in-flight slot always
// cleared so a poisoned key never wedges later callers.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

func (g *flightGroup) do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := new(flightCall)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
	}()
	func() {
		defer c.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				c.val, c.err = nil, fmt.Errorf("workcache: panic in generator: %v", r)
			}
		}()
		c.val, c.err = fn()
	}()
	return c.val, c.err, false
}
