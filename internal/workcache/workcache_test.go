package workcache_test

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netloc/internal/comm"
	"netloc/internal/core"
	"netloc/internal/design"
	"netloc/internal/service"
	"netloc/internal/topology"
	"netloc/internal/trace"
	"netloc/internal/workcache"
)

// TestTraceSingleflightStormRunsOneGeneration is the cold-start storm:
// many concurrent requests for the same missing artifact must run the
// generator exactly once, and every caller must receive the one shared
// value.
func TestTraceSingleflightStormRunsOneGeneration(t *testing.T) {
	c := workcache.New(0)
	k := workcache.TraceKey{Source: workcache.SourceGenerate, App: "storm", Ranks: 64}
	shared := &trace.Trace{}
	var gens atomic.Int64
	release := make(chan struct{})
	start := make(chan struct{})

	const callers = 32
	results := make([]*trace.Trace, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = c.Trace(k, func() (*trace.Trace, error) {
				gens.Add(1)
				<-release // hold the flight open so the storm piles up
				return shared, nil
			})
		}(i)
	}
	close(start)
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := gens.Load(); n != 1 {
		t.Fatalf("generator ran %d times, want 1", n)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != shared {
			t.Fatalf("caller %d received a different trace pointer", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != callers-1 || s.Entries != 1 {
		t.Fatalf("stats after storm = %+v, want 1 miss, %d hits, 1 entry", s, callers-1)
	}
}

// TestGeneratorErrorsAreNotCached pins the error-path contract: a failed
// generation is reported to the caller but never stored, so the next
// request retries and can succeed.
func TestGeneratorErrorsAreNotCached(t *testing.T) {
	c := workcache.New(0)
	k := workcache.TraceKey{Source: workcache.SourceGenerate, App: "flaky", Ranks: 8}
	boom := errors.New("boom")
	if _, err := c.Trace(k, func() (*trace.Trace, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("first call error = %v, want %v", err, boom)
	}
	want := &trace.Trace{}
	got, err := c.Trace(k, func() (*trace.Trace, error) { return want, nil })
	if err != nil || got != want {
		t.Fatalf("retry after error = (%p, %v), want (%p, nil)", got, err, want)
	}
	s := c.Stats()
	if s.Misses != 2 || s.Hits != 0 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 misses, 0 hits, 1 entry", s)
	}
}

// TestPanicInGeneratorBecomesError checks that a panicking generator
// surfaces as an error (to every concurrent waiter) and does not wedge
// the key: the next call runs a fresh generation.
func TestPanicInGeneratorBecomesError(t *testing.T) {
	c := workcache.New(0)
	k := workcache.TraceKey{Source: workcache.SourceGenerate, App: "panicky", Ranks: 8}
	_, err := c.Trace(k, func() (*trace.Trace, error) { panic("kaboom") })
	if err == nil || !strings.Contains(err.Error(), "panic in generator") {
		t.Fatalf("panicking generator returned %v, want a panic-in-generator error", err)
	}
	want := &trace.Trace{}
	got, err := c.Trace(k, func() (*trace.Trace, error) { return want, nil })
	if err != nil || got != want {
		t.Fatalf("call after panic = (%p, %v), want (%p, nil)", got, err, want)
	}
}

// TestEvictionUnderSmallCap drives the LRU past a tiny bound and checks
// that the oldest artifact is evicted (and regenerated on the next
// request) while the rest stay resident.
func TestEvictionUnderSmallCap(t *testing.T) {
	c := workcache.New(2)
	gens := map[string]int{}
	get := func(app string) {
		t.Helper()
		k := workcache.TraceKey{Source: workcache.SourceGenerate, App: app, Ranks: 1}
		if _, err := c.Trace(k, func() (*trace.Trace, error) {
			gens[app]++
			return &trace.Trace{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("c") // cap 2: evicts "a"
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats after overflow = %+v, want 1 eviction, 2 entries", s)
	}
	get("b") // hit: must not regenerate
	get("a") // evicted: must regenerate (and evict "c", the new oldest)
	if gens["a"] != 2 || gens["b"] != 1 || gens["c"] != 1 {
		t.Fatalf("generation counts = %v, want a:2 b:1 c:1", gens)
	}
}

// TestNilCacheDisablesCaching: a nil *Cache is the documented off
// switch — every call runs its generator and no stats accrue.
func TestNilCacheDisablesCaching(t *testing.T) {
	var c *workcache.Cache
	k := workcache.TraceKey{Source: workcache.SourceGenerate, App: "off", Ranks: 1}
	gens := 0
	for i := 0; i < 2; i++ {
		if _, err := c.Trace(k, func() (*trace.Trace, error) {
			gens++
			return &trace.Trace{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if gens != 2 {
		t.Fatalf("nil cache ran generator %d times, want 2", gens)
	}
	if s := c.Stats(); s != (workcache.Stats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", s)
	}
}

// TestSourceKeysSeparateGenerators pins the contamination guard: the
// same (app, ranks) under different sources are distinct artifacts, so
// an extrapolated trace can never satisfy an exact-scale lookup — and
// in particular a failing exact generation stays failing even when the
// extrapolated artifact is already cached.
func TestSourceKeysSeparateGenerators(t *testing.T) {
	c := workcache.New(0)
	at := &trace.Trace{}
	kAt := workcache.TraceKey{Source: workcache.SourceGenerateAt, App: "AMG", Ranks: 1000}
	if _, err := c.Trace(kAt, func() (*trace.Trace, error) { return at, nil }); err != nil {
		t.Fatal(err)
	}
	kGen := workcache.TraceKey{Source: workcache.SourceGenerate, App: "AMG", Ranks: 1000}
	boom := errors.New("unconfigured scale")
	if _, err := c.Trace(kGen, func() (*trace.Trace, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("exact-scale lookup returned %v, want the generator's error (not the extrapolated artifact)", err)
	}
	if s := c.Stats(); s.Misses != 2 || s.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 misses, 0 hits", s)
	}
}

// TestTopologyMemoizedByStructuralParams: the same structural
// configuration yields the one shared built instance (topologies are
// read-only after Build, so sharing is safe), while a different kind
// with otherwise identical parameters is a distinct artifact.
func TestTopologyMemoizedByStructuralParams(t *testing.T) {
	c := workcache.New(0)
	cfg, _, _, err := topology.Configs(64)
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Topology(cfg, cfg.Build)
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Topology(cfg, func() (topology.Topology, error) {
		t.Error("generator ran for a cached topology")
		return nil, errors.New("unreachable")
	})
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatal("cached topology lookup returned a different instance")
	}
	mesh := cfg
	mesh.Kind = "mesh" // same X/Y/Z, different kind: must not collide
	other, err := c.Topology(mesh, mesh.Build)
	if err != nil {
		t.Fatal(err)
	}
	if other == first {
		t.Fatal("mesh and torus with equal dimensions shared one artifact")
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 2 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 hit, 2 misses, 2 entries", s)
	}
}

// TestAccKeyCanonicalizesDefaultPacketSize: PacketSize 0 means "the
// default", so it must share an entry with the explicit default — the
// same canonicalization the analysis pipeline applies.
func TestAccKeyCanonicalizesDefaultPacketSize(t *testing.T) {
	c := workcache.New(0)
	want := &comm.Accumulated{}
	k := workcache.AccKey{Source: workcache.SourceGenerate, App: "x", Ranks: 64}
	if _, err := c.Accumulated(k, func() (*comm.Accumulated, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	k.PacketSize = comm.DefaultPacketSize
	got, err := c.Accumulated(k, func() (*comm.Accumulated, error) {
		t.Error("generator ran for the canonically-equal key")
		return nil, errors.New("unreachable")
	})
	if err != nil || got != want {
		t.Fatalf("explicit-default lookup = (%p, %v), want (%p, nil)", got, err, want)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss", s)
	}
}

// TestConcurrentMixedTrafficSharedCache hammers one small-capped cache
// with concurrent core analyses and design searches while a service
// instance (with its own internal artifact cache) serves analysis
// requests — the -race workout for the storm, hit, and eviction paths
// under realistic mixed traffic.
func TestConcurrentMixedTrafficSharedCache(t *testing.T) {
	cache := workcache.New(4) // small cap: force eviction churn under load
	srv := httptest.NewServer(service.New(service.Options{Workers: 2}))
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 3; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for _, ref := range []struct {
				app   string
				ranks int
			}{{"LULESH", 64}, {"MiniFE", 144}, {"LULESH", 64}} {
				_, err := core.AnalyzeApp(ref.app, ref.ranks,
					core.Options{Cache: cache, SkipLinkTracking: true})
				if err != nil {
					errs <- err
				}
			}
		}()
		go func() {
			defer wg.Done()
			// Pinned to the paper trio: a full-family sweep churns enough
			// distinct artifact keys through the cap-4 cache that the
			// analyze goroutine's repeat lookups can evict before hitting.
			req := design.Request{
				App: "milc", Ranks: 64,
				Families:    []string{"torus", "fattree", "dragonfly"},
				Constraints: design.Constraints{MaxCandidates: 2},
			}
			if _, err := design.Search(req, core.Options{Cache: cache}); err != nil {
				errs <- err
			}
		}()
		go func() {
			defer wg.Done()
			for _, path := range []string{"/v1/analyze?app=LULESH&ranks=64", "/v1/analyze?app=MiniFE&ranks=144"} {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					errs <- err
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s := cache.Stats()
	if s.Misses == 0 {
		t.Fatalf("mixed traffic produced no cache activity: %+v", s)
	}
	if s.Entries > 4 {
		t.Fatalf("cache exceeded its bound: %+v", s)
	}
	// Whether the storm itself scored hits depends on eviction timing
	// under the tiny cap, so assert hit accounting on the quiet cache:
	// one analysis stores 3 artifacts (trace, matrix, topology), all
	// resident under the cap of 4, and an immediate repeat must hit.
	if _, err := core.AnalyzeApp("LULESH", 64, core.Options{Cache: cache, SkipLinkTracking: true}); err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()
	if _, err := core.AnalyzeApp("LULESH", 64, core.Options{Cache: cache, SkipLinkTracking: true}); err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	if after.Hits <= before.Hits {
		t.Fatalf("repeat analysis on a quiet cache missed: %+v -> %+v", before, after)
	}
	if after.Misses != before.Misses {
		t.Fatalf("repeat analysis on a quiet cache regenerated artifacts: %+v -> %+v", before, after)
	}
}
